package server

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamic"
	"repro/internal/ego"
	"repro/internal/graph"
	"repro/internal/store"
)

// Maintenance modes for a served graph.
const (
	// ModeLocal keeps the exact Maintainer (LocalInsert/LocalDelete):
	// every snapshot carries the exact score of every vertex, so top-k for
	// any k and per-vertex queries are O(1)-per-score reads. Costs the
	// evidence-map memory.
	ModeLocal = "local"
	// ModeLazy keeps the LazyTopK maintainer (LazyInsert/LazyDelete) for
	// one configured k: minimal memory, top-k answered from the lazily
	// maintained result set; other read shapes recompute on the snapshot.
	ModeLazy = "lazy"
)

// Top-k algorithms a query may select.
const (
	AlgoAuto   = "auto"   // scores in ModeLocal, lazy set in ModeLazy
	AlgoScores = "scores" // read the maintained exact scores (ModeLocal)
	AlgoLazy   = "lazy"   // the LazyTopK result set (ModeLazy, query k ≤ configured k)
	AlgoOpt    = "opt"    // OptBSearch on the snapshot CSR
	AlgoBase   = "base"   // BaseBSearch on the snapshot CSR
)

// snapshot is the immutable unit of the epoch scheme. Readers obtain the
// current snapshot with one atomic pointer load and then work entirely on
// data that no writer will ever mutate: the CSR graph, the frozen score
// vector, and a result cache that lives and dies with the snapshot (swapping
// in a new snapshot is the cache invalidation).
type snapshot struct {
	epoch  uint64
	g      *graph.Graph
	scores []float64 // exact CB per vertex at this epoch; nil in ModeLazy

	// buildDur is how long this snapshot took to construct (the initial
	// all-vertices computation for epoch 1, the CSR export for later
	// epochs) and buildWorkers the worker budget it was built with — both
	// surfaced through GraphInfo so operators can see the parallel build
	// paying off.
	buildDur     time.Duration
	buildWorkers int

	cache      sync.Map     // cacheKey -> []ego.Result
	cacheCount atomic.Int64 // entries stored, enforcing maxCacheEntries
	statsOnce  sync.Once
	stats      graph.Stats
}

// maxCacheEntries caps a snapshot's result cache. The key space is
// client-chosen (every distinct θ is a distinct key), so without a cap a
// read-only graph — whose snapshot never swaps — would accumulate cached
// results forever. Past the cap queries still compute, just uncached.
const maxCacheEntries = 256

// cacheStore inserts res under key unless the cache is at capacity.
func (s *snapshot) cacheStore(key cacheKey, res []ego.Result) {
	if s.cacheCount.Load() >= maxCacheEntries {
		return
	}
	if _, loaded := s.cache.LoadOrStore(key, res); !loaded {
		s.cacheCount.Add(1)
	}
}

// cacheKey identifies one top-k answer shape on a given snapshot. θ is
// keyed by its bit pattern so any float compares exactly.
type cacheKey struct {
	k         int
	algo      string
	thetaBits uint64
}

// Stats returns the Table-I style statistics of the snapshot, computed once
// per epoch on first demand.
func (s *snapshot) Stats() graph.Stats {
	s.statsOnce.Do(func() { s.stats = graph.ComputeStats(s.g) })
	return s.stats
}

// entry is one served graph: the atomically swappable snapshot for readers
// plus the mutable maintainer state for the (serialized) writer side.
type entry struct {
	name    string
	mode    string
	workers int // snapshot-build worker budget (≥ 1)

	snap atomic.Pointer[snapshot]

	// mu serializes all mutation of the maintainer state below and every
	// snapshot publication. Readers never take it.
	mu    sync.Mutex
	local *dynamic.Maintainer // ModeLocal
	lazy  *dynamic.LazyTopK   // ModeLazy

	// st is the graph's durable store (nil without WithDataDir). Set once
	// before the entry is published, used only under mu; sinceCkpt counts
	// the batches appended since the last durable checkpoint.
	st        *store.Store
	sinceCkpt int

	// Accounting. Atomics, written from both read and write paths.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	inserts     atomic.Int64
	deletes     atomic.Int64

	// Lock-free mirrors of the store's accounting, refreshed after every
	// durable operation so GraphInfo never has to take mu.
	walSeq   atomic.Uint64
	walBytes atomic.Int64
	snapSeq  atomic.Uint64
	ckpts    atomic.Int64
}

// ErrDuplicate marks an Add that lost to an existing graph of the same
// name, so the HTTP layer can distinguish a genuine conflict (409) from
// plain request validation failures (400).
var ErrDuplicate = fmt.Errorf("graph name already exists")

// ErrStorage marks a durability failure (WAL append, fsync, checkpoint) on
// an otherwise valid request, so the HTTP layer can answer 500 — the
// server's disk, not the client's request, is at fault.
var ErrStorage = fmt.Errorf("storage failure")

// maxBatchGrowth bounds how far one edge batch may grow the vertex set
// beyond the current maximum id. The maintainers grow the vertex set to
// max(u,v)+1 on insert, so without a bound a single request naming vertex
// 2e9 would allocate tens of gigabytes under the write lock.
const maxBatchGrowth = 4096

// Default checkpoint policy: snapshot + WAL truncation after this many
// batches or this many WAL bytes, whichever comes first.
const (
	defaultCheckpointBatches = 16
	defaultCheckpointBytes   = 4 << 20
)

// Registry is a named collection of served graphs. Lookup is guarded by a
// read-write mutex; everything per-graph uses the entry's own scheme.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	workers int // snapshot-build worker budget applied to new graphs

	// Persistence (DESIGN.md §8). Empty dataDir means in-memory only.
	dataDir     string
	ckptBatches int
	ckptBytes   int64
	crashHook   func(graph, point string) error
}

// RegistryOption configures a Registry.
type RegistryOption func(*Registry)

// WithBuildWorkers sets the worker budget used to build graph snapshots:
// the initial all-vertices computation runs on the EdgePEBW parallel engine
// and the per-batch CSR export shards its row copy across this many
// goroutines. n ≤ 0 selects GOMAXPROCS.
func WithBuildWorkers(n int) RegistryOption {
	return func(r *Registry) { r.workers = n }
}

// WithDataDir makes the registry durable: every graph gets a WAL + snapshot
// store under dir, every update batch is logged before it is applied, and
// Recover reloads the whole registry after a restart or crash.
func WithDataDir(dir string) RegistryOption {
	return func(r *Registry) { r.dataDir = dir }
}

// WithCheckpointPolicy sets when a graph's WAL is folded into a fresh
// snapshot and truncated: after batches update batches or once the WAL
// exceeds bytes, whichever comes first. Non-positive values keep the
// defaults (16 batches, 4 MiB).
func WithCheckpointPolicy(batches int, bytes int64) RegistryOption {
	return func(r *Registry) {
		if batches > 0 {
			r.ckptBatches = batches
		}
		if bytes > 0 {
			r.ckptBytes = bytes
		}
	}
}

// WithCrashHook installs a crash-injection hook on every graph store,
// invoked at each durability point with the graph name; a non-nil return
// aborts the operation exactly there, leaving the files as a real crash
// would. It exists for the crash-recovery test harness.
func WithCrashHook(h func(graph, point string) error) RegistryOption {
	return func(r *Registry) { r.crashHook = h }
}

// NewRegistry returns an empty registry. The default snapshot-build worker
// budget is GOMAXPROCS.
func NewRegistry(opts ...RegistryOption) *Registry {
	r := &Registry{
		entries:     make(map[string]*entry),
		ckptBatches: defaultCheckpointBatches,
		ckptBytes:   defaultCheckpointBytes,
	}
	for _, o := range opts {
		o(r)
	}
	if r.workers <= 0 {
		r.workers = runtime.GOMAXPROCS(0)
	}
	return r
}

// get returns the entry for name.
func (r *Registry) get(name string) (*entry, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("server: no graph named %q", name)
	}
	return e, nil
}

// Names lists the registered graphs, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Add registers g under name with the given maintenance mode (lazyK applies
// to ModeLazy). Building the maintainer computes all initial scores, which
// for ModeLocal also populates the first snapshot's score vector.
func (r *Registry) Add(name string, g *graph.Graph, mode string, lazyK int) (GraphInfo, error) {
	if name == "" {
		return GraphInfo{}, fmt.Errorf("server: graph name must be non-empty")
	}
	if mode == "" {
		mode = ModeLocal
	}
	if mode != ModeLocal && mode != ModeLazy {
		return GraphInfo{}, fmt.Errorf("server: unknown mode %q (want %q or %q)", mode, ModeLocal, ModeLazy)
	}
	// Building a maintainer computes every vertex's score — the most
	// expensive operation here — so fail the common duplicate case before
	// paying it. The final insert below re-checks under the write lock.
	r.mu.RLock()
	_, dup := r.entries[name]
	r.mu.RUnlock()
	if dup {
		return GraphInfo{}, fmt.Errorf("server: graph %q: %w", name, ErrDuplicate)
	}

	e := &entry{name: name, mode: mode, workers: r.workers}
	first := &snapshot{epoch: 1, g: g, buildWorkers: e.workers}
	t0 := time.Now()
	if mode == ModeLocal {
		e.local = dynamic.NewMaintainerParallel(g, e.workers)
		first.scores = append([]float64(nil), e.local.All()...)
	} else {
		if lazyK < 1 {
			lazyK = 10
		}
		e.lazy = dynamic.NewLazyTopKParallel(g, lazyK, e.workers)
	}
	first.buildDur = time.Since(t0)
	e.snap.Store(first)

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return GraphInfo{}, fmt.Errorf("server: graph %q: %w", name, ErrDuplicate)
	}
	// Creating the store under r.mu keeps the name-reservation and the
	// directory creation atomic (two racing Adds must not both write the
	// same directory); the cost is one snapshot write while lookups wait.
	if r.dataDir != "" {
		st, err := store.Create(store.GraphDir(r.dataDir, name), g,
			e.persistMeta(0), r.storeOptions(name)...)
		if err != nil {
			return GraphInfo{}, fmt.Errorf("server: graph %q: %w", name, err)
		}
		e.st = st
		e.mirrorPersist()
	}
	r.entries[name] = e
	return e.info(), nil
}

// Remove drops the named graph, deleting its durable store (if any) with it.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("server: no graph named %q", name)
	}
	delete(r.entries, name)
	r.mu.Unlock()
	if e.st != nil {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.st.Remove(); err != nil {
			return fmt.Errorf("server: graph %q: remove store: %w", name, err)
		}
	}
	return nil
}

// GraphInfo summarizes one served graph. SnapshotBuildMS is how long the
// currently served snapshot took to build — the initial all-vertices
// computation for epoch 1, the CSR export inside the write lock for later
// epochs — and BuildWorkers the worker budget that built it.
type GraphInfo struct {
	Name            string  `json:"name"`
	Mode            string  `json:"mode"`
	Epoch           uint64  `json:"epoch"`
	N               int32   `json:"n"`
	M               int64   `json:"m"`
	LazyK           int     `json:"lazy_k,omitempty"`
	BuildWorkers    int     `json:"build_workers"`
	SnapshotBuildMS float64 `json:"snapshot_build_ms"`

	// Persistence accounting (WithDataDir only): the last durable WAL batch
	// sequence, the current WAL size, the sequence folded into the on-disk
	// snapshot, and the checkpoints taken since this process opened the
	// graph.
	Persisted   bool   `json:"persisted,omitempty"`
	WALSeq      uint64 `json:"wal_seq,omitempty"`
	WALBytes    int64  `json:"wal_bytes,omitempty"`
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
	Checkpoints int64  `json:"checkpoints,omitempty"`
}

func (e *entry) info() GraphInfo {
	return e.infoAt(e.snap.Load())
}

// infoAt summarizes the entry against one specific snapshot, so callers that
// already hold a snapshot report a single consistent epoch.
func (e *entry) infoAt(s *snapshot) GraphInfo {
	gi := GraphInfo{
		Name: e.name, Mode: e.mode, Epoch: s.epoch,
		N: s.g.NumVertices(), M: s.g.NumEdges(),
		BuildWorkers:    s.buildWorkers,
		SnapshotBuildMS: float64(s.buildDur.Microseconds()) / 1000,
	}
	if e.lazy != nil {
		gi.LazyK = e.lazy.K()
	}
	if e.st != nil {
		gi.Persisted = true
		gi.WALSeq = e.walSeq.Load()
		gi.WALBytes = e.walBytes.Load()
		gi.SnapshotSeq = e.snapSeq.Load()
		gi.Checkpoints = e.ckpts.Load()
	}
	return gi
}

// Info returns the summary of one graph.
func (r *Registry) Info(name string) (GraphInfo, error) {
	e, err := r.get(name)
	if err != nil {
		return GraphInfo{}, err
	}
	return e.info(), nil
}

// Infos returns the summaries of all graphs, sorted by name.
func (r *Registry) Infos() []GraphInfo {
	names := r.Names()
	out := make([]GraphInfo, 0, len(names))
	for _, n := range names {
		if gi, err := r.Info(n); err == nil {
			out = append(out, gi)
		}
	}
	return out
}

// GraphStats is the stats endpoint payload: snapshot statistics plus the
// serving-side accounting.
type GraphStats struct {
	GraphInfo
	DMax        int32   `json:"dmax"`
	AvgDeg      float64 `json:"avg_degree"`
	Triangles   int64   `json:"triangles"`
	Inserts     int64   `json:"inserts"`
	Deletes     int64   `json:"deletes"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
}

// Stats gathers the stats payload for name. The structural part is computed
// on (and cached in) the current snapshot, so it never blocks writers.
func (r *Registry) Stats(name string) (GraphStats, error) {
	e, err := r.get(name)
	if err != nil {
		return GraphStats{}, err
	}
	s := e.snap.Load()
	st := s.Stats()
	return GraphStats{
		GraphInfo:   e.infoAt(s),
		DMax:        st.DMax,
		AvgDeg:      st.AvgDeg,
		Triangles:   st.Triangles,
		Inserts:     e.inserts.Load(),
		Deletes:     e.deletes.Load(),
		CacheHits:   e.cacheHits.Load(),
		CacheMisses: e.cacheMisses.Load(),
	}, nil
}

// TopKResult is the top-k endpoint payload.
type TopKResult struct {
	Graph   string       `json:"graph"`
	Epoch   uint64       `json:"epoch"`
	K       int          `json:"k"`
	Algo    string       `json:"algo"`
	Theta   float64      `json:"theta,omitempty"`
	Cached  bool         `json:"cached"`
	Results []ego.Result `json:"results"`
}

// TopK answers a top-k query. algo "auto" (or "") picks the cheapest exact
// strategy for the graph's mode. All strategies except AlgoLazy are served
// lock-free from the current snapshot; AlgoLazy consults the LazyTopK
// maintainer under the write lock (its Results() call mutates lazy state).
// Answers are cached per (k, algo, θ) in the snapshot they were computed
// against, so an epoch swap invalidates them wholesale.
func (r *Registry) TopK(name string, k int, algo string, theta float64) (TopKResult, error) {
	e, err := r.get(name)
	if err != nil {
		return TopKResult{}, err
	}
	if k < 1 {
		return TopKResult{}, fmt.Errorf("server: k must be ≥ 1, got %d", k)
	}
	snap := e.snap.Load()
	// Clamp k to the vertex count: k sizes result-set allocations all the
	// way down (topk.NewBounded and the search algorithms), so an absurd
	// query parameter must not translate into an absurd allocation.
	if n := int(snap.g.NumVertices()); k > n {
		k = n
	}
	if algo == "" || algo == AlgoAuto {
		if e.mode == ModeLazy {
			algo = AlgoLazy
			if e.lazy != nil && k > e.lazy.K() {
				algo = AlgoOpt // lazy set only holds its configured k
			}
		} else {
			algo = AlgoScores
		}
	}
	if theta < 1 {
		theta = 1.05
	}
	key := cacheKey{k: k, algo: algo}
	if algo == AlgoOpt {
		key.thetaBits = math.Float64bits(theta)
	}

	if v, ok := snap.cache.Load(key); ok {
		e.cacheHits.Add(1)
		return e.topkResult(snap, k, algo, theta, true, v.([]ego.Result)), nil
	}
	e.cacheMisses.Add(1)

	var res []ego.Result
	switch algo {
	case AlgoScores:
		if snap.scores == nil {
			return TopKResult{}, fmt.Errorf("server: algo %q needs mode %q (graph %q is %q)", AlgoScores, ModeLocal, name, e.mode)
		}
		res = ego.TopKOfScores(snap.scores, k)
	case AlgoOpt:
		res, _ = ego.OptBSearch(snap.g, k, theta)
	case AlgoBase:
		res, _ = ego.BaseBSearch(snap.g, k)
	case AlgoLazy:
		if e.lazy == nil {
			return TopKResult{}, fmt.Errorf("server: algo %q needs mode %q (graph %q is %q)", AlgoLazy, ModeLazy, name, e.mode)
		}
		if k > e.lazy.K() {
			return TopKResult{}, fmt.Errorf("server: algo %q serves k ≤ %d, got %d", AlgoLazy, e.lazy.K(), k)
		}
		// Results() refreshes stale members, i.e. mutates maintainer
		// state: take the write lock. Inside it no swap can happen, so
		// the snapshot reloaded here is the one the lazy set matches.
		e.mu.Lock()
		full := e.lazy.Results()
		snap = e.snap.Load()
		e.mu.Unlock()
		if k < len(full) {
			full = full[:k]
		}
		res = full
	default:
		return TopKResult{}, fmt.Errorf("server: unknown algo %q", algo)
	}
	snap.cacheStore(key, res)
	return e.topkResult(snap, k, algo, theta, false, res), nil
}

func (e *entry) topkResult(s *snapshot, k int, algo string, theta float64, cached bool, res []ego.Result) TopKResult {
	tr := TopKResult{Graph: e.name, Epoch: s.epoch, K: k, Algo: algo, Cached: cached, Results: res}
	if algo == AlgoOpt {
		tr.Theta = theta
	}
	return tr
}

// VertexResult is the per-vertex endpoint payload.
type VertexResult struct {
	Graph  string  `json:"graph"`
	Epoch  uint64  `json:"epoch"`
	V      int32   `json:"v"`
	CB     float64 `json:"cb"`
	Degree int32   `json:"degree"`
	Bound  float64 `json:"bound"` // Lemma 2 static upper bound d(d−1)/2
}

// EgoBetweenness answers a single-vertex query, lock-free on the current
// snapshot: from the frozen score vector in ModeLocal, by direct O(local)
// recomputation in ModeLazy.
func (r *Registry) EgoBetweenness(name string, v int32) (VertexResult, error) {
	e, err := r.get(name)
	if err != nil {
		return VertexResult{}, err
	}
	snap := e.snap.Load()
	if v < 0 || v >= snap.g.NumVertices() {
		return VertexResult{}, fmt.Errorf("server: vertex %d out of range [0,%d)", v, snap.g.NumVertices())
	}
	var cb float64
	if snap.scores != nil {
		cb = snap.scores[v]
	} else {
		cb = ego.EgoBetweenness(snap.g, v, nil)
	}
	d := snap.g.Degree(v)
	return VertexResult{Graph: e.name, Epoch: snap.epoch, V: v, CB: cb, Degree: d, Bound: ego.StaticUB(d)}, nil
}

// EdgeError reports one edge of a batch that could not be applied.
type EdgeError struct {
	Edge  [2]int32 `json:"edge"`
	Error string   `json:"error"`
}

// UpdateResult is the edge-update endpoint payload.
type UpdateResult struct {
	Graph   string      `json:"graph"`
	Epoch   uint64      `json:"epoch"` // epoch now serving
	Applied int         `json:"applied"`
	Errors  []EdgeError `json:"errors,omitempty"`
}

// ApplyEdges applies a batch of edge insertions (insert=true) or deletions
// to the named graph. The whole batch runs under the entry's write lock and
// publishes exactly one new snapshot at the end — batching amortizes the
// O(n+m) snapshot export over the batch. Edges that fail individually
// (duplicate insert, missing delete, self-loop) are reported but do not
// abort the rest of the batch.
//
// On a durable registry (WithDataDir) the batch is appended to the graph's
// WAL before it is applied: an error from the append means nothing was
// applied, while an error from the checkpoint that may follow the apply
// means the batch itself is already durable and applied — the returned
// UpdateResult is valid alongside such an error.
func (r *Registry) ApplyEdges(name string, edges [][2]int32, insert bool) (UpdateResult, error) {
	e, err := r.get(name)
	if err != nil {
		return UpdateResult{}, err
	}
	if len(edges) == 0 {
		return UpdateResult{}, fmt.Errorf("server: empty edge batch")
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st != nil {
		if _, err := e.st.AppendBatch(insert, edges); err != nil {
			e.mirrorPersist()
			return UpdateResult{}, fmt.Errorf("server: graph %q: %w: %w", name, ErrStorage, err)
		}
	}
	res := e.applyLocked(edges, insert)

	old := e.snap.Load()
	if res.Applied == 0 {
		// Nothing changed: keep the current snapshot (and its cache).
		res.Epoch = old.epoch
	} else {
		e.snap.Store(e.buildSnapshot(old.epoch + 1))
		res.Epoch = old.epoch + 1
	}
	if err := e.maybeCheckpoint(r.ckptBatches, r.ckptBytes); err != nil {
		return res, fmt.Errorf("server: graph %q: %w: %w", name, ErrStorage, err)
	}
	return res, nil
}

// applyLocked routes one batch through the graph's maintainer, skipping
// per-edge failures. It is deliberately deterministic in the graph state and
// the batch alone — WAL replay calls it with the logged batches to reproduce
// the live outcome exactly. Callers hold e.mu (or own the entry exclusively,
// as recovery does before publication).
func (e *entry) applyLocked(edges [][2]int32, insert bool) UpdateResult {
	res := UpdateResult{Graph: e.name}
	// Inserts may grow the vertex set to max(u,v)+1, so bound how far one
	// batch can push it: ids beyond the limit fail per-edge instead of
	// allocating an arbitrarily large adjacency array under the lock.
	var curN int32
	if e.local != nil {
		curN = e.local.Graph().NumVertices()
	} else {
		curN = e.lazy.Graph().NumVertices()
	}
	limit := curN + maxBatchGrowth
	for _, ed := range edges {
		var opErr error
		if ed[0] >= limit || ed[1] >= limit {
			res.Errors = append(res.Errors, EdgeError{Edge: ed, Error: fmt.Sprintf(
				"server: vertex id exceeds growth limit %d (current n %d + %d per batch)",
				limit, curN, maxBatchGrowth)})
			continue
		}
		switch {
		case insert && e.local != nil:
			opErr = e.local.InsertEdge(ed[0], ed[1])
		case insert && e.lazy != nil:
			opErr = e.lazy.InsertEdge(ed[0], ed[1])
		case !insert && e.local != nil:
			opErr = e.local.DeleteEdge(ed[0], ed[1])
		default:
			opErr = e.lazy.DeleteEdge(ed[0], ed[1])
		}
		if opErr != nil {
			res.Errors = append(res.Errors, EdgeError{Edge: ed, Error: opErr.Error()})
			continue
		}
		res.Applied++
		if insert {
			e.inserts.Add(1)
		} else {
			e.deletes.Add(1)
		}
	}
	return res
}

// buildSnapshot freezes the maintainer's current graph (and, in ModeLocal,
// its exact scores) into a fresh immutable snapshot, sharding the CSR
// export across the entry's worker budget — this runs inside the write
// lock, so its latency is the write-batch publication latency. Callers must
// hold e.mu.
func (e *entry) buildSnapshot(epoch uint64) *snapshot {
	t0 := time.Now()
	var dyn *graph.DynGraph
	if e.local != nil {
		dyn = e.local.Graph()
	} else {
		dyn = e.lazy.Graph()
	}
	s := &snapshot{epoch: epoch, g: dyn.Freeze(e.workers), buildWorkers: e.workers}
	if e.local != nil {
		s.scores = append([]float64(nil), e.local.All()...)
	}
	s.buildDur = time.Since(t0)
	return s
}
