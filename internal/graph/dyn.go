package graph

import (
	"fmt"
	"sort"
)

// DynGraph is a mutable undirected graph with per-vertex sorted adjacency
// slices. Insertions and deletions cost O(d) for the two endpoint lists; all
// read operations match the CSR Graph API, so the ego-betweenness kernels
// that only need reads work on either representation through the Adjacency
// interface.
type DynGraph struct {
	adj [][]int32
	m   int64

	// Per-drain dirty tracking: the vertices whose adjacency changed since
	// the last TakeDirty, deduplicated. InsertEdge/DeleteEdge mark their two
	// endpoints, which is exactly the set of rebuilt lists an overlay
	// publication needs — O(batch) state for an O(batch) publication.
	dirty    []int32
	dirtySet []bool
}

// Adjacency is the minimal read-only view shared by Graph and DynGraph.
// Algorithm kernels that must run on both representations (for example, the
// exact per-vertex recomputation inside the lazy top-k maintainer) accept
// this interface.
type Adjacency interface {
	NumVertices() int32
	NumEdges() int64
	Degree(v int32) int32
	Neighbors(v int32) []int32
	HasEdge(u, v int32) bool
}

var (
	_ Adjacency = (*Graph)(nil)
	_ Adjacency = (*DynGraph)(nil)
)

// NewDynGraph returns an empty dynamic graph with n isolated vertices.
func NewDynGraph(n int32) *DynGraph {
	return &DynGraph{adj: make([][]int32, n)}
}

// DynFromGraph copies a CSR graph into a mutable representation.
func DynFromGraph(g *Graph) *DynGraph {
	// One backing array for all rows instead of a per-vertex allocation:
	// three-index subslices cap each row at its own region, so an append
	// that grows a row reallocates just that row while deletions keep
	// shrinking in place.
	offsets, flat := g.CSR()
	backing := append([]int32(nil), flat...)
	adj := make([][]int32, g.NumVertices())
	for v := range adj {
		adj[v] = backing[offsets[v]:offsets[v+1]:offsets[v+1]]
	}
	return &DynGraph{adj: adj, m: g.NumEdges()}
}

// Freeze exports the dynamic graph as an immutable CSR Graph using up to
// `workers` goroutines for the adjacency copy (workers ≤ 1 stays on the
// calling goroutine). Unlike the general FromAdjacency path it performs no
// sorting or deduplication: DynGraph's per-vertex lists are strictly
// ascending and symmetric by construction, so the export is a prefix sum
// over degrees plus a row-sharded memcpy — O(n + m) work that parallelizes
// to memory bandwidth. This is the snapshot-publication path of the serving
// layer, where export latency sits inside the per-graph write lock.
func (d *DynGraph) Freeze(workers int) *Graph {
	n := int32(len(d.adj))
	return exportCSR(n, d.m, func(v int32) []int32 { return d.adj[v] }, workers)
}

// FreezeOverlay publishes the current state as a copy-on-write overlay on
// prev — the previously published view, either a frozen *Graph or an
// earlier *Overlay. It drains the dirty set and copies only those vertices'
// adjacency lists (the copies detach the overlay from future in-place
// mutations of this DynGraph), so the cost is O(Σ d(v) over dirtied v) —
// proportional to the drained batch, independent of the graph size. This is
// the O(batch) snapshot-publication path of the serving layer.
func (d *DynGraph) FreezeOverlay(prev View) *Overlay {
	dirty := d.TakeDirty()
	delta := make(map[int32][]int32, len(dirty))
	for _, v := range dirty {
		delta[v] = append([]int32(nil), d.adj[v]...)
	}
	return NewOverlay(prev, int32(len(d.adj)), d.m, delta)
}

// markDirty records that v's adjacency changed since the last TakeDirty.
func (d *DynGraph) markDirty(v int32) {
	for int32(len(d.dirtySet)) <= v {
		d.dirtySet = append(d.dirtySet, false)
	}
	if !d.dirtySet[v] {
		d.dirtySet[v] = true
		d.dirty = append(d.dirty, v)
	}
}

// TakeDirty returns the vertices whose adjacency changed since the last
// call (in first-dirtied order, deduplicated) and resets the tracking. The
// caller owns the returned slice.
func (d *DynGraph) TakeDirty() []int32 {
	out := d.dirty
	for _, v := range out {
		d.dirtySet[v] = false
	}
	d.dirty = nil
	return out
}

// DirtyCount returns how many vertices are currently marked dirty.
func (d *DynGraph) DirtyCount() int { return len(d.dirty) }

// NumVertices returns the current number of vertices.
func (d *DynGraph) NumVertices() int32 { return int32(len(d.adj)) }

// NumEdges returns the current number of undirected edges.
func (d *DynGraph) NumEdges() int64 { return d.m }

// Degree returns the degree of v.
func (d *DynGraph) Degree(v int32) int32 { return int32(len(d.adj[v])) }

// Neighbors returns the sorted neighbor list of v. The slice aliases
// internal state: it is valid until the next mutation of v and must not be
// modified by the caller.
func (d *DynGraph) Neighbors(v int32) []int32 { return d.adj[v] }

// HasEdge reports whether the undirected edge (u, v) is present.
func (d *DynGraph) HasEdge(u, v int32) bool {
	if u == v || u < 0 || v < 0 || int(u) >= len(d.adj) || int(v) >= len(d.adj) {
		return false
	}
	if len(d.adj[u]) > len(d.adj[v]) {
		u, v = v, u
	}
	return containsSorted(d.adj[u], v)
}

// EnsureVertices grows the vertex set to at least n vertices.
func (d *DynGraph) EnsureVertices(n int32) {
	for int32(len(d.adj)) < n {
		d.adj = append(d.adj, nil)
	}
}

// InsertEdge adds the undirected edge (u, v), growing the vertex set if
// needed. It returns an error for self-loops and for edges already present.
func (d *DynGraph) InsertEdge(u, v int32) error {
	if u == v {
		return fmt.Errorf("graph: self-loop (%d,%d)", u, v)
	}
	if u < 0 || v < 0 {
		return fmt.Errorf("graph: negative vertex in edge (%d,%d)", u, v)
	}
	mx := u
	if v > mx {
		mx = v
	}
	d.EnsureVertices(mx + 1)
	if containsSorted(d.adj[u], v) {
		return fmt.Errorf("graph: edge (%d,%d) already present", u, v)
	}
	d.adj[u] = insertSorted(d.adj[u], v)
	d.adj[v] = insertSorted(d.adj[v], u)
	d.m++
	d.markDirty(u)
	d.markDirty(v)
	return nil
}

// DeleteEdge removes the undirected edge (u, v). It returns an error when
// the edge is absent.
func (d *DynGraph) DeleteEdge(u, v int32) error {
	if u == v || u < 0 || v < 0 || int(u) >= len(d.adj) || int(v) >= len(d.adj) {
		return fmt.Errorf("graph: edge (%d,%d) not present", u, v)
	}
	au, okU := removeSorted(d.adj[u], v)
	if !okU {
		return fmt.Errorf("graph: edge (%d,%d) not present", u, v)
	}
	av, okV := removeSorted(d.adj[v], u)
	if !okV {
		return fmt.Errorf("graph: edge (%d,%d) asymmetric adjacency", u, v)
	}
	d.adj[u], d.adj[v] = au, av
	d.m--
	d.markDirty(u)
	d.markDirty(v)
	return nil
}

// CommonNeighbors appends N(u) ∩ N(v) to dst and returns it.
func (d *DynGraph) CommonNeighbors(dst []int32, u, v int32) []int32 {
	return IntersectSorted(dst, d.adj[u], d.adj[v])
}

// MaxDegree returns the current maximum degree.
func (d *DynGraph) MaxDegree() int32 {
	var mx int32
	for _, nbrs := range d.adj {
		if int32(len(nbrs)) > mx {
			mx = int32(len(nbrs))
		}
	}
	return mx
}

// Clone returns a deep copy of the adjacency state. Dirty tracking starts
// fresh in the clone: it belongs to the publication pipeline of the original.
func (d *DynGraph) Clone() *DynGraph {
	adj := make([][]int32, len(d.adj))
	for v, nbrs := range d.adj {
		adj[v] = append(make([]int32, 0, len(nbrs)), nbrs...)
	}
	return &DynGraph{adj: adj, m: d.m}
}

func insertSorted(s []int32, x int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

func removeSorted(s []int32, x int32) ([]int32, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i >= len(s) || s[i] != x {
		return s, false
	}
	copy(s[i:], s[i+1:])
	return s[:len(s)-1], true
}
