package nbr

import (
	"math/rand/v2"
	"testing"
)

// benchLists builds a hub list of n elements and k leaf lists of m elements
// with partial overlap, the shape of a hub vertex's pair scans.
func benchLists(n, k, m int) ([]int32, [][]int32) {
	rng := rand.New(rand.NewPCG(3, 3))
	span := int32(4 * n)
	hub := sortedList(rng, n, span)
	leaves := make([][]int32, k)
	for i := range leaves {
		leaves[i] = sortedList(rng, m, span)
	}
	return hub, leaves
}

// BenchmarkLinearMergeHub is the pre-refactor baseline on the hub shape:
// the plain merge walks the full hub list for every leaf.
func BenchmarkLinearMergeHub(b *testing.B) {
	hub, leaves := benchLists(8192, 64, 64)
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, leaf := range leaves {
			dst = linearInto(dst[:0], leaf, hub)
		}
	}
}

// BenchmarkGallopHub measures the galloping kernel on the same shape.
func BenchmarkGallopHub(b *testing.B) {
	hub, leaves := benchLists(8192, 64, 64)
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, leaf := range leaves {
			dst = gallopInto(dst[:0], leaf, hub)
		}
	}
}

// BenchmarkRegisterHub measures the pooled-bitset kernel: mark the hub once,
// probe every leaf — the per-center amortization the evidence engine uses.
func BenchmarkRegisterHub(b *testing.B) {
	hub, leaves := benchLists(8192, 64, 64)
	reg := AcquireRegister(4 * 8192)
	defer ReleaseRegister(reg)
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Mark(hub)
		for _, leaf := range leaves {
			dst = reg.IntersectInto(dst[:0], leaf)
		}
		reg.Unmark()
	}
}

// BenchmarkAdaptiveBalanced measures IntersectInto on size-balanced lists,
// where the dispatch stays on the linear merge.
func BenchmarkAdaptiveBalanced(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	x := sortedList(rng, 256, 1024)
	y := sortedList(rng, 256, 1024)
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectInto(dst[:0], x, y)
	}
}

// BenchmarkAdaptiveSkewed measures IntersectInto on 32×-skewed lists, where
// the dispatch selects galloping.
func BenchmarkAdaptiveSkewed(b *testing.B) {
	rng := rand.New(rand.NewPCG(6, 6))
	small := sortedList(rng, 64, 1<<16)
	large := sortedList(rng, 64*32, 1<<16)
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectInto(dst[:0], small, large)
	}
}
