//go:build !linux

package store

import "os"

// readFileShared reads path into the heap on platforms without the mmap fast
// path; the decoder's aliasing contract is unchanged (the caller hands the
// buffer over either way).
func readFileShared(path string) ([]byte, error) {
	return os.ReadFile(path)
}
