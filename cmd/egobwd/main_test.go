package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/server"
)

// TestRunRejectsBadPreload: run must fail fast on an unknown dataset or an
// invalid maintenance mode instead of starting a half-configured server.
func TestRunRejectsBadPreload(t *testing.T) {
	err := run(config{addr: "127.0.0.1:0", preload: "not-a-dataset", mode: "local", k: 10})
	if err == nil || !strings.Contains(err.Error(), "not-a-dataset") {
		t.Fatalf("unknown dataset: err = %v", err)
	}
	err = run(config{addr: "127.0.0.1:0", preload: "ir", mode: "bogus-mode", k: 10, buildWorkers: 2})
	if err == nil || !strings.Contains(err.Error(), "bogus-mode") {
		t.Fatalf("bad mode: err = %v", err)
	}
}

// TestSetupRecoversDataDir: the boot path must reload graphs persisted by a
// previous process, and a preload of an already-recovered name must be
// skipped rather than fatal.
func TestSetupRecoversDataDir(t *testing.T) {
	dir := t.TempDir()

	// "Previous process": a durable registry with one graph and an update.
	reg := server.NewRegistry(server.WithDataDir(dir), server.WithBuildWorkers(1))
	g := graph.MustFromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}})
	if _, err := reg.Add("demo", g, server.ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ApplyEdges("demo", [][2]int32{{1, 3}}, true); err != nil {
		t.Fatal(err)
	}
	// Stand-in for process death: releases the store locks (content is
	// already durable; a real kill would release them via the kernel).
	reg.Close()

	srv, err := setup(config{dataDir: dir, ckptEvery: 4})
	if err != nil {
		t.Fatalf("setup with data dir: %v", err)
	}
	info, err := srv.Registry().Info("demo")
	if err != nil {
		t.Fatalf("recovered graph missing: %v", err)
	}
	if info.M != 6 || !info.Persisted || info.WALSeq != 1 {
		t.Fatalf("recovered info = %+v, want m=6 persisted wal_seq=1", info)
	}
	// One post-Add update and no checkpoint: the snapshot carries no
	// maintainer state, so this boot went through the rebuild path.
	if info.RecoverPath != "rebuild" || info.RecoverReason == "" {
		t.Fatalf("recover_path=%q reason=%q, want rebuild with a reason", info.RecoverPath, info.RecoverReason)
	}
}

// TestSetupFastRecovery: once the previous process checkpointed past the
// policy threshold, the next boot imports the snapshot's maintainer state
// instead of recomputing it — Info must report recover_path=fast and the
// recovered graph must answer queries.
func TestSetupFastRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := server.NewRegistry(server.WithDataDir(dir), server.WithBuildWorkers(1),
		server.WithCheckpointPolicy(2, 1<<20))
	g := graph.MustFromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}, {4, 5}})
	if _, err := reg.Add("demo", g, server.ModeLocal, 0); err != nil {
		t.Fatal(err)
	}
	// Three batches against checkpoint-every-2: a state-carrying checkpoint
	// lands at batch 2, batch 3 stays in the WAL tail for replay.
	for _, e := range [][2]int32{{1, 3}, {0, 4}, {2, 5}} {
		if _, err := reg.ApplyEdges("demo", [][2]int32{e}, true); err != nil {
			t.Fatal(err)
		}
	}
	reg.Close()

	srv, err := setup(config{dataDir: dir, ckptEvery: 2})
	if err != nil {
		t.Fatalf("setup with data dir: %v", err)
	}
	info, err := srv.Registry().Info("demo")
	if err != nil {
		t.Fatalf("recovered graph missing: %v", err)
	}
	if info.RecoverPath != "fast" || info.RecoverReason != "" {
		t.Fatalf("recover_path=%q reason=%q, want fast with no reason", info.RecoverPath, info.RecoverReason)
	}
	if info.M != 9 || info.WALSeq != 3 {
		t.Fatalf("recovered info = %+v, want m=9 wal_seq=3", info)
	}
	if _, err := srv.Registry().TopK("demo", 3, "opt", 1.05); err != nil {
		t.Fatalf("TopK after fast recovery: %v", err)
	}
}

// TestSetupRejectsCorruptDataDir: a data directory whose contents cannot be
// recovered must fail the boot loudly, never serve partial state silently.
func TestSetupRejectsCorruptDataDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("not a graph dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := setup(config{dataDir: dir}); err == nil {
		t.Fatal("setup accepted a data dir with unrecognized contents")
	}
}
