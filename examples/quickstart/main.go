// Quickstart: the paper's Fig. 1 running example, end to end.
//
// Builds the 16-vertex graph from the paper, computes every vertex's
// ego-betweenness, runs the top-5 search both ways, and replays the paper's
// Example 5 edge insertion — printing the values the paper derives
// (CB(d)=14/3, CB(f)=11, top-5 = {f, x, i, c, d}, ...).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	egobw "repro"
	"repro/internal/paperex"
)

func main() {
	g := paperex.New()
	fmt.Println("Fig. 1 graph:", egobw.Stats(g))

	// Exact ego-betweenness of every vertex (Definition 2).
	cb := egobw.ComputeAll(g)
	fmt.Println("\nEgo-betweennesses (Example 1-2):")
	for v, name := range paperex.Names {
		fmt.Printf("  CB(%s) = %.4f\n", name, cb[v])
	}

	// Top-5 with both search algorithms (Examples 3-4).
	base, bst := egobw.TopK(g, 5, egobw.WithBaseSearch())
	opt, ost := egobw.TopK(g, 5) // OptBSearch, θ = 1.05
	fmt.Println("\nTop-5 (paper: f, x, i, c, d):")
	for i := range opt {
		fmt.Printf("  %d. %s  CB=%.4f\n", i+1, paperex.Names[opt[i].V], opt[i].CB)
	}
	fmt.Printf("BaseBSearch computed %d of %d vertices exactly (paper: 10).\n",
		bst.Computed, g.NumVertices())
	fmt.Printf("OptBSearch computed %d — the dynamic bound pruned harder.\n", ost.Computed)
	_ = base

	// Example 5: insert edge (i, k) and watch the local updates.
	m := egobw.NewMaintainer(g)
	if err := m.InsertEdge(paperex.I, paperex.K); err != nil {
		panic(err)
	}
	fmt.Println("\nAfter inserting (i,k) — Example 5:")
	for _, v := range []int32{paperex.I, paperex.K, paperex.F, paperex.J} {
		fmt.Printf("  CB(%s) = %.2f\n", paperex.Names[v], m.CB(v))
	}
	fmt.Println("(paper: CB(i)=10.5, CB(k)=0.5, CB(f)=9.5)")
}
