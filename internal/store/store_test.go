package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(6, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStoreCreateOpenReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	g := testGraph(t)
	s, err := Create(dir, g, SnapshotMeta{Mode: 0})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][][2]int32{{{0, 3}}, {{1, 4}, {2, 5}}, {{0, 1}}}
	for i, edges := range batches {
		insert := i != 2
		seq, err := s.AppendBatch(insert, edges)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sameGraph(t, rec.Graph, g)
	if rec.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", rec.TornBytes)
	}
	if len(rec.Tail) != 3 {
		t.Fatalf("tail has %d batches, want 3", len(rec.Tail))
	}
	for i, b := range rec.Tail {
		if b.Seq != uint64(i+1) || b.Insert != (i != 2) || len(b.Edges) != len(batches[i]) {
			t.Fatalf("tail[%d] = %+v", i, b)
		}
	}
	if s2.Seq() != 3 || s2.SnapshotSeq() != 0 {
		t.Fatalf("seq=%d snapSeq=%d, want 3/0", s2.Seq(), s2.SnapshotSeq())
	}
	// Appends continue after the recovered tail.
	if seq, err := s2.AppendBatch(true, [][2]int32{{5, 0}}); err != nil || seq != 4 {
		t.Fatalf("post-recovery append: seq=%d err=%v", seq, err)
	}
}

// TestStoreTornTailRepair: garbage appended to the WAL (a torn final write)
// is dropped and truncated away on Open, and the store appends cleanly from
// the repaired end.
func TestStoreTornTailRepair(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	s, err := Create(dir, testGraph(t), SnapshotMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendBatch(true, [][2]int32{{0, 3}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	walPath := filepath.Join(dir, walFile)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := EncodeBatch(Batch{Seq: 2, Insert: true, Edges: [][2]int32{{1, 4}}})
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornBytes != int64(len(torn)-3) {
		t.Fatalf("torn bytes = %d, want %d", rec.TornBytes, len(torn)-3)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 1 {
		t.Fatalf("tail = %+v, want just seq 1", rec.Tail)
	}
	// The repair is durable: append, close, and the next Open sees a clean
	// log with consecutive sequences.
	if seq, err := s2.AppendBatch(false, [][2]int32{{0, 3}}); err != nil || seq != 2 {
		t.Fatalf("append after repair: seq=%d err=%v", seq, err)
	}
	s2.Close()
	_, rec3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.TornBytes != 0 || len(rec3.Tail) != 2 {
		t.Fatalf("after repair: torn=%d tail=%d, want 0/2", rec3.TornBytes, len(rec3.Tail))
	}
}

func TestStoreCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	g := testGraph(t)
	s, err := Create(dir, g, SnapshotMeta{Mode: 1, LazyK: 5})
	if err != nil {
		t.Fatal(err)
	}
	dyn := graph.DynFromGraph(g)
	for _, e := range [][2]int32{{0, 3}, {1, 4}} {
		if _, err := s.AppendBatch(true, [][2]int32{e}); err != nil {
			t.Fatal(err)
		}
		if err := dyn.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	preBytes := s.WALBytes()
	if err := s.Checkpoint(dyn.Freeze(1), SnapshotMeta{Mode: 1, LazyK: 5, Seq: s.Seq()}); err != nil {
		t.Fatal(err)
	}
	if s.WALBytes() >= preBytes || s.SnapshotSeq() != 2 || s.Checkpoints() != 1 {
		t.Fatalf("after checkpoint: walBytes=%d snapSeq=%d ckpts=%d", s.WALBytes(), s.SnapshotSeq(), s.Checkpoints())
	}
	if _, err := s.AppendBatch(false, [][2]int32{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Meta.Seq != 2 || rec.Meta.Mode != 1 || rec.Meta.LazyK != 5 {
		t.Fatalf("recovered meta = %+v", rec.Meta)
	}
	sameGraph(t, rec.Graph, dyn.Freeze(1))
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 3 || rec.Tail[0].Insert {
		t.Fatalf("tail = %+v, want only seq 3 (delete)", rec.Tail)
	}
}

// TestStoreCrashHooks drives every injection point and verifies what a
// subsequent Open recovers — the file-level statement of the recovery
// invariant (the e2e statement lives in internal/server's recovery suite).
func TestStoreCrashHooks(t *testing.T) {
	errBoom := errors.New("injected crash")
	g := testGraph(t)

	// setup builds a store with one applied+logged batch and a crash hook
	// armed at the given point.
	setup := func(t *testing.T, point string) (*Store, *graph.DynGraph) {
		dir := filepath.Join(t.TempDir(), "g")
		armed := false
		s, err := Create(dir, g, SnapshotMeta{}, WithCrashHook(func(p string) error {
			if armed && p == point {
				return errBoom
			}
			return nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		dyn := graph.DynFromGraph(g)
		if _, err := s.AppendBatch(true, [][2]int32{{0, 3}}); err != nil {
			t.Fatal(err)
		}
		if err := dyn.InsertEdge(0, 3); err != nil {
			t.Fatal(err)
		}
		armed = true
		return s, dyn
	}

	t.Run(CrashBeforeWALAppend, func(t *testing.T) {
		s, _ := setup(t, CrashBeforeWALAppend)
		if _, err := s.AppendBatch(true, [][2]int32{{1, 4}}); !errors.Is(err, errBoom) {
			t.Fatalf("err = %v", err)
		}
		s.Close()
		_, rec, err := Open(s.Dir())
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Tail) != 1 { // the crashed batch was never logged
			t.Fatalf("tail = %+v, want 1 batch", rec.Tail)
		}
	})

	t.Run(CrashAfterWALAppend, func(t *testing.T) {
		s, _ := setup(t, CrashAfterWALAppend)
		if _, err := s.AppendBatch(true, [][2]int32{{1, 4}}); !errors.Is(err, errBoom) {
			t.Fatalf("err = %v", err)
		}
		s.Close()
		_, rec, err := Open(s.Dir())
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Tail) != 2 { // durable despite the crash: must be replayed
			t.Fatalf("tail = %+v, want 2 batches", rec.Tail)
		}
	})

	ckptPoints := []struct {
		point    string
		snapSeq  uint64 // snapshot sequence Open should see
		tailLen  int
		tornWAL  bool
		newGraph bool // recovered graph is the checkpointed one
	}{
		{CrashBeforeCheckpoint, 0, 1, false, false},
		{CrashAfterSnapshotTmp, 0, 1, false, false},
		{CrashAfterSnapshotRename, 1, 0, false, true},
	}
	for _, tc := range ckptPoints {
		t.Run(tc.point, func(t *testing.T) {
			s, dyn := setup(t, tc.point)
			err := s.Checkpoint(dyn.Freeze(1), SnapshotMeta{Seq: s.Seq()})
			if !errors.Is(err, errBoom) {
				t.Fatalf("err = %v", err)
			}
			s.Close()
			_, rec, err := Open(s.Dir())
			if err != nil {
				t.Fatal(err)
			}
			if rec.Meta.Seq != tc.snapSeq {
				t.Fatalf("snapshot seq = %d, want %d", rec.Meta.Seq, tc.snapSeq)
			}
			if len(rec.Tail) != tc.tailLen {
				t.Fatalf("tail = %+v, want %d batches", rec.Tail, tc.tailLen)
			}
			want := g
			if tc.newGraph {
				want = dyn.Freeze(1)
			}
			sameGraph(t, rec.Graph, want)
			// Whatever the crash point, snapshot ⊕ tail reproduces the
			// applied state.
			final := graph.DynFromGraph(rec.Graph)
			for _, b := range rec.Tail {
				for _, e := range b.Edges {
					if b.Insert {
						if err := final.InsertEdge(e[0], e[1]); err != nil {
							t.Fatal(err)
						}
					} else {
						if err := final.DeleteEdge(e[0], e[1]); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			sameGraph(t, final.Freeze(1), dyn.Freeze(1))
		})
	}
}

// TestStoreSequenceGapFailsLoud: WAL records that pass their CRCs but skip a
// sequence mean a wrong history — Open must refuse, not replay it.
func TestStoreSequenceGapFailsLoud(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	s, err := Create(dir, testGraph(t), SnapshotMeta{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	img := walImage(
		Batch{Seq: 1, Insert: true, Edges: [][2]int32{{0, 3}}},
		Batch{Seq: 3, Insert: true, Edges: [][2]int32{{1, 4}}},
	)
	if err := os.WriteFile(filepath.Join(dir, walFile), img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("sequence gap accepted")
	}
}

func TestNameEncoding(t *testing.T) {
	cases := []string{"dblp", "my graph", "a/b\\c", "..", "%41", "ünïcode", "-_ok9"}
	seen := map[string]bool{}
	for _, name := range cases {
		dir := encodeName(name)
		if seen[dir] {
			t.Fatalf("collision on %q", dir)
		}
		seen[dir] = true
		if filepath.Base(dir) != dir || dir == "." || dir == ".." {
			t.Fatalf("encodeName(%q) = %q is not a plain directory name", name, dir)
		}
		back, err := decodeName(dir)
		if err != nil {
			t.Fatalf("decodeName(%q): %v", dir, err)
		}
		if back != name {
			t.Fatalf("round trip %q → %q → %q", name, dir, back)
		}
	}
	for _, bad := range []string{"a%4", "a%zz", "a.b", "%41"} { // %41 = 'A': non-canonical
		if _, err := decodeName(bad); err == nil {
			t.Errorf("decodeName(%q) accepted", bad)
		}
	}
}

func TestListGraphs(t *testing.T) {
	dataDir := t.TempDir()
	if names, err := ListGraphs(dataDir); err != nil || len(names) != 0 {
		t.Fatalf("empty dir: %v %v", names, err)
	}
	if names, err := ListGraphs(filepath.Join(dataDir, "missing")); err != nil || names != nil {
		t.Fatalf("missing dir: %v %v", names, err)
	}
	g := testGraph(t)
	for _, name := range []string{"zeta", "my graph", "alpha"} {
		s, err := Create(GraphDir(dataDir, name), g, SnapshotMeta{})
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	names, err := ListGraphs(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "my graph", "zeta"}; len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Fatalf("names = %v, want %v", names, want)
	}
	// A stray file in the data dir is unrecognized durable state: loud.
	if err := os.WriteFile(filepath.Join(dataDir, "stray"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ListGraphs(dataDir); err == nil {
		t.Fatal("stray file tolerated")
	}
}

// TestStoreLockExcludesSecondOpener: two live Stores on one directory would
// interleave WAL appends with independently assigned sequences — the flock
// must fail the second opener loudly, and release on Close (as the kernel
// does on process death).
func TestStoreLockExcludesSecondOpener(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	s, err := Create(dir, testGraph(t), SnapshotMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("second opener admitted while the store is live")
	}
	if _, err := Create(dir, testGraph(t), SnapshotMeta{}); err == nil {
		t.Fatal("concurrent Create admitted while the store is live")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Open(dir)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	s2.Close()
}

// TestStorePoisonedAfterFailure: after any durability error the store must
// refuse further appends and checkpoints — continuing past a write of
// unknown extent could orphan acknowledged batches behind a torn record.
func TestStorePoisonedAfterFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	g := testGraph(t)
	boom := errors.New("injected failure")
	armed := false
	s, err := Create(dir, g, SnapshotMeta{}, WithCrashHook(func(p string) error {
		if armed && p == CrashAfterWALAppend {
			return boom
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	armed = true
	if _, err := s.AppendBatch(true, [][2]int32{{0, 3}}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if s.Failed() == nil {
		t.Fatal("store not poisoned")
	}
	armed = false // even with the fault gone, the store must stay down
	if _, err := s.AppendBatch(true, [][2]int32{{1, 4}}); !errors.Is(err, boom) {
		t.Fatalf("append on poisoned store: err = %v", err)
	}
	if err := s.Checkpoint(g, SnapshotMeta{Seq: s.Seq()}); !errors.Is(err, boom) {
		t.Fatalf("checkpoint on poisoned store: err = %v", err)
	}
}

// TestStoreShortWALRecovered: a crash inside resetWAL's truncate→header
// window leaves a WAL shorter than its header. That provably post-dates a
// durable snapshot folding every acknowledged batch, so Open must treat it
// as an empty log, not corruption.
func TestStoreShortWALRecovered(t *testing.T) {
	for _, size := range []int{0, 5} {
		t.Run(fmt.Sprintf("%dbytes", size), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "g")
			g := testGraph(t)
			s, err := Create(dir, g, SnapshotMeta{Seq: 7})
			if err != nil {
				t.Fatal(err)
			}
			s.Close()
			if err := os.WriteFile(filepath.Join(dir, walFile), walFileHeader()[:size], 0o644); err != nil {
				t.Fatal(err)
			}
			s2, rec, err := Open(dir)
			if err != nil {
				t.Fatalf("short wal rejected: %v", err)
			}
			if len(rec.Tail) != 0 || rec.TornBytes != int64(size) {
				t.Fatalf("tail=%d torn=%d, want empty log with %d torn bytes", len(rec.Tail), rec.TornBytes, size)
			}
			sameGraph(t, rec.Graph, g)
			// The log was rebuilt: appends and a clean reopen both work.
			if seq, err := s2.AppendBatch(true, [][2]int32{{0, 3}}); err != nil || seq != 8 {
				t.Fatalf("append after repair: seq=%d err=%v", seq, err)
			}
			s2.Close()
			if _, rec3, err := Open(dir); err != nil || len(rec3.Tail) != 1 {
				t.Fatalf("reopen after repair: %v", err)
			}
		})
	}
}

// TestStoreCreateFailureLeavesNothing: a Create that fails partway (here:
// injected abort between the snapshot temp write and its rename) must not
// leave a directory behind for a later recovery scan to resurrect — the
// caller was told the graph does not exist.
func TestStoreCreateFailureLeavesNothing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g")
	boom := errors.New("injected failure")
	_, err := Create(dir, testGraph(t), SnapshotMeta{}, WithCrashHook(func(p string) error {
		if p == CrashAfterSnapshotTmp {
			return boom
		}
		return nil
	}))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("failed Create left %s behind: %v", dir, err)
	}
}
